//! Cold-start persistence: build the system once, save everything to disk
//! (fact table, pre-aggregated cubes, dictionaries), and bring it back up
//! without re-aggregating — the operational flow of a production OLAP
//! server whose 32 GB cubes are far too expensive to rebuild per restart.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use holap::prelude::*;
use holap::store::{load_system, save_system};
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join("holap-persistence-demo");

    // --- Cold build: aggregate cubes from the raw rows. ---
    let hierarchy = PaperHierarchy::scaled_down(8);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows: 300_000,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 99,
    });
    let t0 = Instant::now();
    let system = HybridSystem::builder(SystemConfig::default())
        .facts(facts)
        .cube_at(1)
        .cube_at(2)
        .build()
        .expect("cold build");
    let cold = t0.elapsed();
    let reference = system
        .query("select sum(measure0) where time.level2 in 3..17")
        .expect("reference query");
    println!(
        "cold start : {:>8.1} ms (aggregated cubes at {:?})",
        cold.as_secs_f64() * 1e3,
        system.cube_resolutions()
    );

    // --- Save the whole image. ---
    let t0 = Instant::now();
    let cubes: Vec<&MolapCube> = system
        .cube_resolutions()
        .into_iter()
        .map(|r| system.cube(r).expect("resident"))
        .collect();
    save_system(&dir, system.fact_table(), &cubes, system.dictionaries()).expect("save");
    let bytes: u64 = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum();
    println!(
        "saved      : {:>8.1} ms ({} files, {:.1} MB) -> {}",
        t0.elapsed().as_secs_f64() * 1e3,
        std::fs::read_dir(&dir).unwrap().count(),
        bytes as f64 / (1024.0 * 1024.0),
        dir.display()
    );
    drop(system);

    // --- Warm start: load, install prebuilt cubes, no aggregation. ---
    let t0 = Instant::now();
    let (table, cubes, dicts) = load_system(&dir).expect("load");
    let mut builder = HybridSystem::builder(SystemConfig::default()).facts((table, dicts));
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let warm_system = builder.build().expect("warm build");
    let warm = t0.elapsed();
    println!(
        "warm start : {:>8.1} ms (cubes loaded at {:?})",
        warm.as_secs_f64() * 1e3,
        warm_system.cube_resolutions()
    );

    // --- Same answers. ---
    let replay = warm_system
        .query("select sum(measure0) where time.level2 in 3..17")
        .expect("replay query");
    assert_eq!(replay.answer.count, reference.answer.count);
    assert!((replay.answer.sum - reference.answer.sum).abs() < 1e-6);
    println!(
        "verified   : identical answers (sum = {:.1}, count = {})",
        replay.answer.sum, replay.answer.count
    );

    std::fs::remove_dir_all(&dir).ok();
}
