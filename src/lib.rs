//! # holap — a hybrid GPU/CPU OLAP system with deadline-aware co-scheduling
//!
//! A from-scratch Rust reproduction of *"Task Scheduling for GPU
//! Accelerated Hybrid OLAP Systems with Multi-core Support and
//! Text-to-Integer Translation"* (Malik, Riha, Shea, El-Ghazawi, IPDPSW
//! 2012).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] | performance models (CPU piecewise, GPU linear, dictionary) + least-squares fitting |
//! | [`dict`] | per-column string dictionaries + text-to-integer translation |
//! | [`table`] | columnar fact table + filter/aggregate scan engine |
//! | [`cube`] | chunked MOLAP cubes, multi-resolution sets, parallel aggregation |
//! | [`gpusim`] | simulated Fermi GPU: partitions, concurrent kernels, memory accounting |
//! | [`sched`] | the Figure-10 co-scheduler + MET/MCT/round-robin baselines |
//! | [`obs`] | metrics registry, query tracing, scheduling flight recorder |
//! | [`workload`] | TPC-DS-like data generators + calibrated query mixes |
//! | [`sim`] | discrete-event system model (the paper's Section-IV evaluation) |
//! | [`store`] | checksummed binary persistence for tables, cubes and dictionaries |
//! | [`core`] | the runnable hybrid engine with a query DSL |
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use holap::prelude::*;
//!
//! // Generate a laptop-scale instance of the paper's data geometry…
//! let hierarchy = PaperHierarchy::scaled_down(8);
//! let facts = SyntheticFacts::generate(&FactsSpec {
//!     schema: hierarchy.table_schema(),
//!     rows: 10_000,
//!     text_levels: vec![TextLevel { dim: 1, level: 3, style: NameStyle::City }],
//!     dict_kind: DictKind::Sorted,
//!     skew: None,
//!     seed: 1,
//! });
//! // …bring up the hybrid system (CPU cubes + simulated GPU + scheduler)…
//! let system = HybridSystem::builder(SystemConfig::default())
//!     .facts(facts)
//!     .cube_at(2)
//!     .build()
//!     .unwrap();
//! // …and ask it something.
//! let out = system.query("select avg(measure0) where time.level2 in 3..17").unwrap();
//! assert!(out.answer.count > 0);
//! ```

#![warn(missing_docs)]

pub use holap_core as core;
pub use holap_cube as cube;
pub use holap_dict as dict;
pub use holap_gpusim as gpusim;
pub use holap_model as model;
pub use holap_obs as obs;
pub use holap_sched as sched;
pub use holap_sim as sim;
pub use holap_store as store;
pub use holap_table as table;
pub use holap_workload as workload;

/// The most commonly used types in one import.
pub mod prelude {
    pub use holap_core::{
        AdmissionConfig, Answer, BackpressurePolicy, EngineError, EngineQuery, EngineStats,
        FaultToleranceConfig, HybridSystem, IntoEngineQuery, QueryBuilder, QueryOutcome,
        QueryTicket, RetryConfig, SheddingPolicy, Submission, SystemConfig,
    };
    pub use holap_cube::{CubeQuery, CubeSchema, CubeSet, DimRange, MolapCube};
    pub use holap_dict::{DictKind, Dictionary, DictionarySet, TextCondition};
    pub use holap_gpusim::{DeviceConfig, FaultKind, FaultPlan, GpuDevice};
    pub use holap_model::SystemProfile;
    pub use holap_obs::{
        FlightRecorder, MetricsRegistry, ObsConfig, QueryTrace, SpanKind, TraceStatus,
    };
    pub use holap_sched::{HealthConfig, HealthState, PartitionLayout, Policy, Scheduler};
    pub use holap_sim::{run_closed_loop, run_open_loop, SimConfig};
    pub use holap_table::{AggOp, AggSpec, FactTable, Predicate, ScanQuery, TableSchema};
    pub use holap_workload::{
        FactsSpec, NameStyle, PaperHierarchy, QueryGenerator, SyntheticFacts, TextLevel,
        WorkloadPreset,
    };
}
